/**
 * @file
 * Tests of the observability subsystem (src/obs) and its wiring.
 *
 * The load-bearing property is the *invisibility contract*: metrics
 * and tracing, enabled or disabled, may not change a search result by
 * a single bit. The suite pins it directly — every golden fixture
 * reproduced bitwise with observability fully on and fully off —
 * plus the mechanics behind it: exact counters under an 8-thread
 * hammer, byte-stable snapshot JSON round-trips, ring-buffer
 * wraparound accounting, Chrome-trace parse-back through util/json,
 * the service request-lifecycle spans, and the trajectory checker
 * that gates perf CI.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "api/search_api.hh"
#include "exec/eval_cache.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "obs/trajectory.hh"
#include "service/search_service.hh"
#include "service/service_bus.hh"
#include "service/wire.hh"
#include "util/divisors.hh"
#include "util/json.hh"
#include "workload/layer.hh"

namespace dosa {
namespace {

using service::Frame;
using service::SearchService;
using service::ServiceBus;
using service::ServiceConfig;

// ---------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------

TEST(Metrics, CounterAndGaugeHammerIsExact)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("test.hammer");
    obs::Gauge &g = reg.gauge("test.level");

    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 20000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&] {
            for (uint64_t i = 0; i < kPerThread; ++i) {
                c.add(1);
                g.add(3);
                g.add(-3);
            }
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(c.value(), uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(g.value(), 0);

    g.set(-7);
    EXPECT_EQ(g.value(), -7);

    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("test.hammer"),
            uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(snap.gauges.at("test.level"), -7);
}

TEST(Metrics, HistogramHammerCountsEveryRecord)
{
    obs::MetricsRegistry reg;
    obs::Histogram &h = reg.histogram("test.dur_s");

    constexpr int kThreads = 8;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.recordNs(uint64_t(1) << (unsigned(t + i) % 20));
        });
    for (std::thread &t : threads)
        t.join();

    EXPECT_EQ(h.count(), uint64_t(kThreads) * kPerThread);

    obs::MetricsSnapshot snap = reg.snapshot();
    const obs::MetricsSnapshot::HistogramData &d =
            snap.histograms.at("test.dur_s");
    EXPECT_EQ(d.count, uint64_t(kThreads) * kPerThread);
    uint64_t bucket_total = 0;
    for (const auto &[le_s, n] : d.buckets) {
        EXPECT_GT(le_s, 0.0);
        bucket_total += n;
    }
    EXPECT_EQ(bucket_total, d.count);
    EXPECT_GT(d.sum_s, 0.0);
    EXPECT_LE(d.min_s, d.max_s);
    // Quantiles are monotone upper estimates within [min, max].
    double p50 = d.quantile(0.5), p99 = d.quantile(0.99);
    EXPECT_LE(p50, p99);
    EXPECT_GE(p50, d.min_s);
    EXPECT_LE(p99, d.max_s);
    EXPECT_FALSE(d.str().empty());
}

TEST(Metrics, SnapshotJsonRoundTripIsByteStable)
{
    obs::MetricsRegistry reg;
    reg.counter("b.count").add(42);
    reg.gauge("a.level").set(-3);
    reg.histogram("c.dur_s").record(0.5);
    reg.histogram("c.dur_s").record(1.5e-6);

    obs::MetricsSnapshot snap = reg.snapshot();
    std::string bytes = snap.toJson().dump();
    EXPECT_EQ(bytes, reg.snapshot().toJson().dump())
            << "same state must serialize to same bytes";

    json::Value parsed;
    std::string error;
    ASSERT_TRUE(json::parse(bytes, parsed, error)) << error;
    obs::MetricsSnapshot back;
    ASSERT_TRUE(obs::MetricsSnapshot::fromJson(parsed, "snap", back,
            error))
            << error;
    EXPECT_EQ(back.toJson().dump(), bytes);
    EXPECT_EQ(back.counters.at("b.count"), 42u);
    EXPECT_EQ(back.gauges.at("a.level"), -3);
    EXPECT_EQ(back.histograms.at("c.dur_s").count, 2u);

    // Strictness: a histogram missing its required keys is rejected.
    ASSERT_TRUE(json::parse(
            "{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{\"h\":{\"count\":1}}}",
            parsed, error))
            << error;
    EXPECT_FALSE(obs::MetricsSnapshot::fromJson(parsed, "snap", back,
            error));
    EXPECT_FALSE(error.empty());
}

TEST(Metrics, DisabledRegistryRecordsNothing)
{
    obs::MetricsRegistry reg;
    obs::Counter &c = reg.counter("test.gated");
    obs::Gauge &g = reg.gauge("test.gated_level");
    obs::Histogram &h = reg.histogram("test.gated_dur");

    reg.setEnabled(false);
    c.add(5);
    g.set(9);
    h.record(0.25);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);

    reg.setEnabled(true);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST(Metrics, CollectorContributesAtSnapshotTime)
{
    obs::MetricsRegistry reg;
    std::atomic<uint64_t> source{7};
    reg.registerCollector([&source](obs::MetricsSnapshot &snap) {
        snap.counters["pull.source"] = source.load();
    });
    EXPECT_EQ(reg.snapshot().counters.at("pull.source"), 7u);
    source.store(11);
    EXPECT_EQ(reg.snapshot().counters.at("pull.source"), 11u);
}

TEST(Metrics, ResetZerosInstrumentsButKeepsNames)
{
    obs::MetricsRegistry reg;
    reg.counter("r.count").add(3);
    reg.histogram("r.dur").record(1.0);
    reg.reset();
    obs::MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counters.at("r.count"), 0u);
    EXPECT_EQ(snap.histograms.at("r.dur").count, 0u);
    // The handle from before the reset still works.
    reg.counter("r.count").add(2);
    EXPECT_EQ(reg.snapshot().counters.at("r.count"), 2u);
}

TEST(Metrics, GlobalRegistryCarriesSubsystemInstruments)
{
    // The rehomed sources register their collectors lazily on first
    // use; touch each one before snapshotting.
    globalEvalCache().stats();
    divisorsOf(12);
    obs::MetricsSnapshot snap = obs::globalMetrics().snapshot();
    EXPECT_TRUE(snap.counters.count("eval_cache.hits"));
    EXPECT_TRUE(snap.counters.count("eval_cache.misses"));
    EXPECT_TRUE(snap.counters.count("divisors.memo_hits"));
    EXPECT_TRUE(snap.gauges.count("eval_cache.entries"));
}

// ---------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------

/** Restores the global tracer to disabled when a test exits. */
struct GlobalTracerGuard
{
    ~GlobalTracerGuard() { obs::globalTracer().disable(); }
};

/** Names of all events in a Chrome trace document. */
std::set<std::string>
eventNames(const json::Value &doc)
{
    std::set<std::string> names;
    const json::Value *events = doc.find("traceEvents");
    if (events == nullptr || !events->isArray())
        return names;
    for (const json::Value &ev : events->elements())
        if (const json::Value *name = ev.find("name"))
            names.insert(name->asString());
    return names;
}

TEST(Trace, SpansAndInstantsParseBackAsChromeTraceJson)
{
    obs::Tracer tracer;
    tracer.enable();
    tracer.recordSpan("phase_a", "test", 1000, 4000, 3, 7);
    tracer.recordSpan("phase_b", "test", 4000, 5000);
    tracer.recordInstant("marker", "test", 42);
    tracer.disable();
    EXPECT_EQ(tracer.eventCount(), 3u);
    EXPECT_EQ(tracer.droppedCount(), 0u);

    std::string bytes = tracer.toJson().dump();
    json::Value doc;
    std::string error;
    ASSERT_TRUE(json::parse(bytes, doc, error)) << error;

    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    ASSERT_EQ(events->elements().size(), 3u);

    // Sorted by timestamp; required Chrome keys present and typed.
    double prev_ts = -1.0;
    for (const json::Value &ev : events->elements()) {
        ASSERT_TRUE(ev.isObject());
        for (const char *key : {"name", "cat", "ph"}) {
            const json::Value *v = ev.find(key);
            ASSERT_NE(v, nullptr) << key;
            EXPECT_TRUE(v->isString()) << key;
        }
        for (const char *key : {"ts", "pid", "tid"}) {
            const json::Value *v = ev.find(key);
            ASSERT_NE(v, nullptr) << key;
            EXPECT_TRUE(v->isNumber()) << key;
        }
        const std::string &ph = ev.find("ph")->asString();
        if (ph == "X") {
            ASSERT_NE(ev.find("dur"), nullptr);
        } else {
            ASSERT_EQ(ph, "i");
            ASSERT_NE(ev.find("s"), nullptr); // instant scope
        }
        double ts = ev.find("ts")->asDouble();
        EXPECT_GE(ts, prev_ts);
        prev_ts = ts;
    }

    // Args survive with their values; absent args are omitted.
    const json::Value &first = events->elements()[0];
    ASSERT_NE(first.find("args"), nullptr);
    EXPECT_EQ(first.find("args")->find("arg0")->asInt(), 3);
    EXPECT_EQ(first.find("args")->find("arg1")->asInt(), 7);
    EXPECT_EQ(events->elements()[1].find("args"), nullptr);
}

TEST(Trace, RingWraparoundKeepsNewestEvents)
{
    obs::Tracer tracer;
    tracer.setCapacity(4);
    tracer.enable();
    for (uint64_t i = 0; i < 20; ++i)
        tracer.recordSpan("spin", "test", i * 1000, i * 1000 + 10);
    tracer.disable();

    EXPECT_EQ(tracer.eventCount(), 4u);
    EXPECT_EQ(tracer.droppedCount(), 16u);

    // The survivors are the 4 newest (ts 16..19 ms -> 16000..19000 us
    // ... in ns here; the dump converts to microseconds).
    const json::Value doc = tracer.toJson();
    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->elements().size(), 4u);
    for (const json::Value &ev : events->elements())
        EXPECT_GE(ev.find("ts")->asDouble(), 16.0); // 16000 ns == 16 us
}

TEST(Trace, DisabledTracerRecordsNothing)
{
    obs::Tracer tracer;
    tracer.recordSpan("ghost", "test", 0, 10);
    tracer.recordInstant("ghost", "test");
    EXPECT_EQ(tracer.eventCount(), 0u);
    EXPECT_EQ(tracer.nowNs(), 0u);

    // Re-enable drops events of a previous enable.
    tracer.enable();
    tracer.recordSpan("kept", "test", 0, 10);
    tracer.disable();
    EXPECT_EQ(tracer.eventCount(), 1u);
    tracer.enable();
    EXPECT_EQ(tracer.eventCount(), 0u);
    tracer.disable();
}

TEST(Trace, WriteFileRoundTripsThroughParser)
{
    obs::Tracer tracer;
    tracer.enable();
    tracer.recordSpan("io", "test", 100, 200);
    tracer.disable();

    const std::string path =
            ::testing::TempDir() + "test_obs_trace.json";
    std::string error;
    ASSERT_TRUE(tracer.writeFile(path, error)) << error;

    FILE *f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::string bytes;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.append(buf, n);
    std::fclose(f);
    std::remove(path.c_str());

    json::Value doc;
    ASSERT_TRUE(json::parse(bytes, doc, error)) << error;
    EXPECT_EQ(eventNames(doc).count("io"), 1u);
}

// ---------------------------------------------------------------
// The invisibility contract, end to end.
// ---------------------------------------------------------------

/** The canonical two-layer workload of the golden fixtures. */
std::vector<Layer>
goldenLayers()
{
    return {
        Layer::gemm("a", 128, 64, 256),
        Layer::conv("b", 3, 16, 32, 64),
    };
}

/** The facade specs equivalent to the tests/golden/ fixture configs. */
std::vector<SearchSpec>
goldenSpecs()
{
    SearchSpec dosa;
    dosa.algorithm = "dosa";
    dosa.workload = goldenLayers();
    dosa.seed = 5;
    dosa.options.set("start_points", 3)
            .set("steps_per_start", 30)
            .set("round_every", 15);

    SearchSpec random;
    random.algorithm = "random";
    random.workload = goldenLayers();
    random.seed = 3;
    random.options.set("hw_designs", 4).set("mappings_per_hw", 30);

    SearchSpec mapper;
    mapper.algorithm = "mapper";
    mapper.workload = goldenLayers();
    mapper.seed = 17;
    mapper.options.set("samples", 40);

    SearchSpec bayesopt;
    bayesopt.algorithm = "bayesopt";
    bayesopt.workload = goldenLayers();
    bayesopt.seed = 21;
    bayesopt.options.set("warmup_samples", 6)
            .set("total_samples", 14)
            .set("hw_candidates", 3)
            .set("map_candidates", 4);

    return {dosa, random, mapper, bayesopt};
}

/** Golden fixture contents (format of tests/test_golden_traces.cc). */
struct Golden
{
    std::vector<double> trace;
    double best_edp = 0.0;
    long long pe_dim = 0, accum_kib = 0, spad_kib = 0;
};

void
readGolden(const std::string &name, Golden &g)
{
    const std::string path = std::string(DOSA_SOURCE_DIR) +
            "/tests/golden/" + name + ".trace";
    FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr) << "missing fixture " << path;
    char line[256];
    size_t n = 0;
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr); // comment
    ASSERT_EQ(std::fscanf(f, "trace %zu\n", &n), 1);
    g.trace.resize(n);
    for (size_t i = 0; i < n; ++i) {
        ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
        g.trace[i] = std::strtod(line, nullptr);
    }
    ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
    g.best_edp = std::strtod(line + std::strlen("best_edp "), nullptr);
    ASSERT_EQ(std::fscanf(f, "best_hw %lld %lld %lld", &g.pe_dim,
                      &g.accum_kib, &g.spad_kib),
            3);
    std::fclose(f);
}

void
expectBitwiseEqual(const std::string &name, const SearchResult &r,
                   const Golden &g)
{
    ASSERT_EQ(r.trace.size(), g.trace.size()) << name;
    size_t mismatches = 0;
    for (size_t i = 0; i < g.trace.size(); ++i)
        if (r.trace[i] != g.trace[i] &&
            !(std::isnan(r.trace[i]) && std::isnan(g.trace[i])))
            ++mismatches;
    EXPECT_EQ(mismatches, 0u) << name << ": trace drifted";
    EXPECT_EQ(r.best_edp, g.best_edp) << name;
    EXPECT_EQ(r.best_hw.pe_dim, g.pe_dim) << name;
    EXPECT_EQ(r.best_hw.accum_kib, g.accum_kib) << name;
    EXPECT_EQ(r.best_hw.spad_kib, g.spad_kib) << name;
}

TEST(ObsInvariance, GoldenTracesBitwiseWithObservabilityOnAndOff)
{
    GlobalTracerGuard guard;
    for (const SearchSpec &spec : goldenSpecs()) {
        Golden g;
        readGolden(spec.algorithm, g);
        if (::testing::Test::HasFatalFailure())
            return;

        // Fully off: no metrics recording, no tracing.
        obs::globalMetrics().setEnabled(false);
        obs::globalTracer().disable();
        SearchReport off = runSearch(spec);
        obs::globalMetrics().setEnabled(true);

        // Fully on: metrics plus span tracing.
        obs::globalTracer().enable();
        SearchReport on = runSearch(spec);
        obs::globalTracer().disable();

        expectBitwiseEqual(spec.algorithm + " (obs off)", off.search,
                g);
        expectBitwiseEqual(spec.algorithm + " (obs on)", on.search, g);
    }
}

TEST(ObsInvariance, SearcherPhasesAppearAsSpans)
{
    GlobalTracerGuard guard;
    obs::globalTracer().enable();
    for (const SearchSpec &spec : goldenSpecs())
        runSearch(spec);
    obs::globalTracer().disable();

    std::set<std::string> names = eventNames(obs::globalTracer().toJson());
    // The driver phases, every searcher's own phases and the facade
    // and batched-replay spans must all be present.
    for (const char *expected :
            {"setup", "done", "starts", "descent", "merge", "sampling",
             "warmup", "guided", "runSearch", "tape.replayBatch"})
        EXPECT_TRUE(names.count(expected))
                << expected << " missing from trace";
}

// ---------------------------------------------------------------
// Service: lifecycle spans, stats frame, bounded windows.
// ---------------------------------------------------------------

/** Receive frames until (and including) a terminal one. */
std::vector<std::string>
collectStream(ServiceBus::Client &client)
{
    std::vector<std::string> frames;
    std::string line;
    while (client.receive(line)) {
        frames.push_back(line);
        Frame f;
        std::string error;
        if (service::decodeFrame(line, f, error) &&
            (f.kind == Frame::Kind::Done ||
                    f.kind == Frame::Kind::Error ||
                    f.kind == Frame::Kind::Pong ||
                    f.kind == Frame::Kind::Stats))
            break;
    }
    return frames;
}

Frame
terminalFrame(const std::vector<std::string> &frames)
{
    Frame f;
    std::string error;
    EXPECT_FALSE(frames.empty());
    if (!frames.empty()) {
        EXPECT_TRUE(service::decodeFrame(frames.back(), f, error))
                << error;
    }
    return f;
}

TEST(ObsService, RequestLifecycleSpansAndEnrichedStatsFrame)
{
    GlobalTracerGuard guard;
    obs::globalTracer().enable();

    SearchSpec spec = goldenSpecs()[2]; // mapper: the cheapest
    Frame stats;
    {
        SearchService svc;
        ServiceBus bus(svc);
        ServiceBus::Client client = bus.connect();

        client.send(service::encodeSearchRequest("r1", spec));
        Frame done = terminalFrame(collectStream(client));
        EXPECT_EQ(done.kind, Frame::Kind::Done);

        client.send(service::encodeStatsRequest("s1"));
        stats = terminalFrame(collectStream(client));
        svc.drain();
    }
    obs::globalTracer().disable();

    // Full request lifecycle on the trace: decode -> queue -> run ->
    // reply, plus the searcher running inside.
    std::set<std::string> names = eventNames(obs::globalTracer().toJson());
    for (const char *expected : {"service.decode", "service.queue",
                 "service.run", "service.reply", "runSearch"})
        EXPECT_TRUE(names.count(expected))
                << expected << " missing from service trace";

    // The stats frame is versioned, reports its retention window and
    // carries the process-wide metrics snapshot.
    ASSERT_EQ(stats.kind, Frame::Kind::Stats);
    EXPECT_EQ(stats.schema, service::kStatsSchema);
    EXPECT_EQ(stats.stats_window, 1024u); // ServiceConfig default
    EXPECT_GE(stats.metrics.counters.at("service.search.admitted"),
            1u);
    EXPECT_TRUE(stats.metrics.counters.count("eval_cache.hits"));
    EXPECT_GE(stats.metrics.histograms.at("service.search.run_s")
                      .count,
            1u);
}

TEST(ObsService, HistoryAndTimingWindowsAreBounded)
{
    ServiceConfig cfg;
    cfg.stats_window = 4;
    SearchService svc(cfg);
    ServiceBus bus(svc);
    ServiceBus::Client client = bus.connect();

    for (int i = 0; i < 10; ++i) {
        client.send(service::encodePingRequest(
                "p" + std::to_string(i)));
        Frame f = terminalFrame(collectStream(client));
        EXPECT_EQ(f.kind, Frame::Kind::Pong);
    }

    // All ten requests counted, but history and percentile window
    // retain only the last 4.
    std::vector<service::RequestRecord> history = svc.history();
    EXPECT_EQ(history.size(), 4u);
    EXPECT_EQ(history.back().id, "p9");
    EXPECT_EQ(history.front().id, "p6");

    std::vector<service::EndpointStats> stats = svc.stats();
    ASSERT_EQ(stats.size(), 4u);
    EXPECT_EQ(stats[1].name, "ping");
    EXPECT_EQ(stats[1].requests, 10u);
    EXPECT_EQ(stats[1].processing_s.n, 4u);
}

// ---------------------------------------------------------------
// Trajectory checker.
// ---------------------------------------------------------------

TEST(Trajectory, MetricKindFollowsNamingConvention)
{
    using obs::MetricKind;
    EXPECT_EQ(obs::metricKind("frames_per_s"), MetricKind::HigherBetter);
    EXPECT_EQ(obs::metricKind("samples_per_s"),
            MetricKind::HigherBetter);
    EXPECT_EQ(obs::metricKind("wall_s"), MetricKind::LowerBetter);
    EXPECT_EQ(obs::metricKind("search_p99_s"), MetricKind::LowerBetter);
    EXPECT_EQ(obs::metricKind("scalar_per_cand_us"),
            MetricKind::LowerBetter);
    EXPECT_EQ(obs::metricKind("queue_wait_ns"), MetricKind::LowerBetter);
    EXPECT_EQ(obs::metricKind("unix_time"), MetricKind::Ignored);
    EXPECT_EQ(obs::metricKind("bench"), MetricKind::Context);
    EXPECT_EQ(obs::metricKind("schema"), MetricKind::Context);
    EXPECT_EQ(obs::metricKind("clients"), MetricKind::Context);
}

std::vector<json::Value>
parseLines(const std::string &text)
{
    std::vector<json::Value> lines;
    std::string error;
    EXPECT_TRUE(obs::parseTrajectory(text, lines, error)) << error;
    return lines;
}

TEST(Trajectory, FlagsRegressionsBeyondThreshold)
{
    // wall_s doubled (lower-better) and frames_per_s halved
    // (higher-better): both beyond a 25% threshold.
    auto lines = parseLines(
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":1,"
            "\"wall_s\":1.0,\"frames_per_s\":100.0}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":2,"
            "\"wall_s\":2.0,\"frames_per_s\":50.0}\n");
    obs::TrajectoryCheck check = obs::checkTrajectory(lines, 0.25);
    EXPECT_TRUE(check.compared);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.regressions.size(), 2u);
    EXPECT_FALSE(check.detail.empty());

    // The same delta passes under a permissive threshold.
    EXPECT_TRUE(obs::checkTrajectory(lines, 1.5).ok);
}

TEST(Trajectory, ImprovementsAndSmallDriftPass)
{
    auto lines = parseLines(
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":1,"
            "\"wall_s\":1.0,\"frames_per_s\":100.0}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":2,"
            "\"wall_s\":0.5,\"frames_per_s\":110.0}\n");
    obs::TrajectoryCheck check = obs::checkTrajectory(lines, 0.25);
    EXPECT_TRUE(check.compared);
    EXPECT_TRUE(check.ok);
    EXPECT_TRUE(check.regressions.empty());
}

TEST(Trajectory, ContextMismatchMeansNotComparable)
{
    // Different mode: the newest line has no comparable prior.
    auto lines = parseLines(
            "{\"bench\":\"b\",\"mode\":\"full\",\"unix_time\":1,"
            "\"wall_s\":1.0}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":2,"
            "\"wall_s\":9.0}\n");
    obs::TrajectoryCheck check = obs::checkTrajectory(lines, 0.25);
    EXPECT_FALSE(check.compared);
    EXPECT_TRUE(check.ok);

    // A line without `schema` is schema 1 (the pre-versioning seed
    // format), so it stays comparable with stamped lines.
    auto mixed = parseLines(
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":1,"
            "\"wall_s\":1.0}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"schema\":1,"
            "\"unix_time\":2,\"wall_s\":1.1}\n");
    obs::TrajectoryCheck mixed_check =
            obs::checkTrajectory(mixed, 0.25);
    EXPECT_TRUE(mixed_check.compared);
    EXPECT_TRUE(mixed_check.ok);

    // The comparable prior is the *most recent* matching line, not
    // the first: old=4.0 vs new=1.0 passes even though line 1 (0.1)
    // would have failed.
    auto scan = parseLines(
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":1,"
            "\"wall_s\":0.1}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":2,"
            "\"wall_s\":4.0}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":3,"
            "\"wall_s\":1.0}\n");
    EXPECT_TRUE(obs::checkTrajectory(scan, 0.25).ok);
}

TEST(Trajectory, NoBaselineIsExplicitAndPasses)
{
    // Empty prior (fresh BENCH file, or a single first run): the
    // check passes and says why nothing was compared, so the
    // check_trajectory gate can exit 0 with an explicit note
    // instead of silently falling through.
    obs::TrajectoryCheck empty =
            obs::checkTrajectory({}, 0.25);
    EXPECT_TRUE(empty.ok);
    EXPECT_FALSE(empty.compared);
    EXPECT_EQ(empty.detail,
            "no baseline: fewer than two lines; nothing to compare\n");

    auto single = parseLines(
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":1,"
            "\"wall_s\":1.0}\n");
    obs::TrajectoryCheck first = obs::checkTrajectory(single, 0.25);
    EXPECT_TRUE(first.ok);
    EXPECT_FALSE(first.compared);
    EXPECT_EQ(first.detail,
            "no baseline: fewer than two lines; nothing to compare\n");

    // Context change (same bench, new mode): prior lines exist but
    // none is comparable — same explicit no-baseline outcome.
    auto mismatch = parseLines(
            "{\"bench\":\"b\",\"mode\":\"full\",\"unix_time\":1,"
            "\"wall_s\":1.0}\n"
            "{\"bench\":\"b\",\"mode\":\"quick\",\"unix_time\":2,"
            "\"wall_s\":9.0}\n");
    obs::TrajectoryCheck check = obs::checkTrajectory(mismatch, 0.25);
    EXPECT_TRUE(check.ok);
    EXPECT_FALSE(check.compared);
    EXPECT_EQ(check.detail,
            "no baseline: no prior line with a matching context; "
            "nothing to compare\n");
}

TEST(Trajectory, ParserRejectsMalformedLines)
{
    std::vector<json::Value> lines;
    std::string error;
    EXPECT_FALSE(obs::parseTrajectory(
            "{\"bench\":\"b\"}\nnot json\n", lines, error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;

    EXPECT_FALSE(obs::parseTrajectory("[1,2]\n", lines, error));

    lines.clear();
    EXPECT_TRUE(obs::parseTrajectory("\n\n", lines, error)) << error;
    EXPECT_TRUE(lines.empty());
    EXPECT_FALSE(obs::checkTrajectory(lines, 0.25).compared);
}

} // namespace
} // namespace dosa
