/**
 * @file
 * Unit tests for the statistics module: correlations, error metrics
 * and summary helpers, including known-value and property checks.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/stats.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

TEST(Mean, BasicAndEmpty)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stddev, KnownValue)
{
    // Sample stddev of {2,4,4,4,5,5,7,9} is ~2.138 (n-1 denominator).
    EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.13809, 1e-4);
    EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    EXPECT_NEAR(geomean({1.0, 100.0}), 10.0, 1e-9);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-9);
}

TEST(Median, OddEven)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(v, 100.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(v, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.0);
}

TEST(Summary, OfSummarizesTheDistribution)
{
    Summary s = Summary::of({4.0, 1.0, 3.0, 2.0, 5.0});
    EXPECT_EQ(s.n, 5u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.0);
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_DOUBLE_EQ(s.p90, percentile({1, 2, 3, 4, 5}, 90.0));
    EXPECT_DOUBLE_EQ(s.p99, percentile({1, 2, 3, 4, 5}, 99.0));
}

TEST(Summary, EmptyAndSingleton)
{
    Summary empty = Summary::of({});
    EXPECT_EQ(empty.n, 0u);
    EXPECT_DOUBLE_EQ(empty.min, 0.0);
    EXPECT_DOUBLE_EQ(empty.p99, 0.0);

    Summary one = Summary::of({2.5});
    EXPECT_EQ(one.n, 1u);
    EXPECT_DOUBLE_EQ(one.min, 2.5);
    EXPECT_DOUBLE_EQ(one.max, 2.5);
    EXPECT_DOUBLE_EQ(one.p50, 2.5);
    EXPECT_DOUBLE_EQ(one.p99, 2.5);
}

TEST(Summary, StrNamesEveryField)
{
    std::string s = Summary::of({1.0, 2.0}).str();
    for (const char *field : {"n=", "min=", "mean=", "p50=", "p90=",
                 "p99=", "max="})
        EXPECT_NE(s.find(field), std::string::npos) << s;
}

TEST(Pearson, PerfectCorrelation)
{
    std::vector<double> x = {1, 2, 3, 4};
    std::vector<double> y = {10, 20, 30, 40};
    EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
    std::vector<double> z = {40, 30, 20, 10};
    EXPECT_NEAR(pearson(x, z), -1.0, 1e-12);
}

TEST(Pearson, ConstantInputGivesZero)
{
    EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {1, 2, 3}), 0.0);
}

TEST(Ranks, AverageTies)
{
    auto r = ranks({10.0, 20.0, 20.0, 30.0});
    ASSERT_EQ(r.size(), 4u);
    EXPECT_DOUBLE_EQ(r[0], 1.0);
    EXPECT_DOUBLE_EQ(r[1], 2.5);
    EXPECT_DOUBLE_EQ(r[2], 2.5);
    EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Spearman, MonotoneNonlinearIsPerfect)
{
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y;
    for (double v : x)
        y.push_back(std::exp(v)); // monotone but nonlinear
    EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, KnownPartialValue)
{
    // Classic example: one swapped pair out of five.
    std::vector<double> x = {1, 2, 3, 4, 5};
    std::vector<double> y = {1, 2, 3, 5, 4};
    // rho = 1 - 6*sum(d^2)/(n(n^2-1)) = 1 - 6*2/120 = 0.9
    EXPECT_NEAR(spearman(x, y), 0.9, 1e-12);
}

TEST(Spearman, InvariantToMonotoneTransform)
{
    Rng rng(5);
    std::vector<double> x, y;
    for (int i = 0; i < 50; ++i) {
        x.push_back(rng.uniformReal(0.0, 10.0));
        y.push_back(x.back() + rng.gaussian(0.0, 2.0));
    }
    double base = spearman(x, y);
    std::vector<double> x_log;
    for (double v : x)
        x_log.push_back(std::log(v + 1.0));
    EXPECT_NEAR(spearman(x_log, y), base, 1e-12);
}

TEST(ErrorMetrics, MeanAndMax)
{
    std::vector<double> ref = {100.0, 200.0};
    std::vector<double> pred = {101.0, 190.0}; // 1% and 5%
    EXPECT_NEAR(meanAbsPercentError(pred, ref), 3.0, 1e-9);
    EXPECT_NEAR(maxAbsPercentError(pred, ref), 5.0, 1e-9);
}

TEST(ErrorMetrics, SkipsZeroReference)
{
    std::vector<double> ref = {0.0, 100.0};
    std::vector<double> pred = {5.0, 110.0};
    EXPECT_NEAR(meanAbsPercentError(pred, ref), 10.0, 1e-9);
}

TEST(ErrorMetrics, FractionWithinPercent)
{
    std::vector<double> ref = {100, 100, 100, 100};
    std::vector<double> pred = {100.5, 101.5, 99.8, 90.0};
    EXPECT_NEAR(fractionWithinPercent(pred, ref, 1.0), 0.5, 1e-12);
    EXPECT_NEAR(fractionWithinPercent(pred, ref, 2.0), 0.75, 1e-12);
    EXPECT_NEAR(fractionWithinPercent(pred, ref, 20.0), 1.0, 1e-12);
}

TEST(ErrorMetrics, ExactPredictionsAreZeroError)
{
    std::vector<double> v = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(meanAbsPercentError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(maxAbsPercentError(v, v), 0.0);
    EXPECT_DOUBLE_EQ(fractionWithinPercent(v, v, 0.0), 1.0);
}

class SpearmanNoise
    : public ::testing::TestWithParam<double> // noise level
{
};

TEST_P(SpearmanNoise, DegradesWithNoise)
{
    double noise = GetParam();
    Rng rng(99);
    std::vector<double> x, y;
    for (int i = 0; i < 400; ++i) {
        x.push_back(rng.uniformReal(0.0, 1.0));
        y.push_back(x.back() + rng.gaussian(0.0, noise));
    }
    double rho = spearman(x, y);
    if (noise < 0.01)
        EXPECT_GT(rho, 0.99);
    else if (noise < 0.5)
        EXPECT_GT(rho, 0.5);
    else
        EXPECT_LT(rho, 0.9);
    EXPECT_GT(rho, 0.0); // always positively related
}

INSTANTIATE_TEST_SUITE_P(Noise, SpearmanNoise,
        ::testing::Values(0.0, 0.1, 0.3, 1.0));

} // namespace
} // namespace dosa
