/**
 * @file
 * Unit and property tests for mappings: completeness, random
 * generation, divisor-quota rounding and ordering semantics.
 */

#include <gtest/gtest.h>

#include "mapping/mapping.hh"
#include "mapping/rounding.hh"
#include "util/rng.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

Layer
smallLayer()
{
    return Layer::conv("small", 3, 8, 16, 32, 1);
}

TEST(Mapping, DefaultIsAllOnes)
{
    Mapping m;
    for (Dim d : kAllDims)
        EXPECT_EQ(m.dimProduct(d), 1);
    EXPECT_TRUE(m.positive());
}

TEST(Mapping, CompleteChecksEveryDim)
{
    Layer l = smallLayer();
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kDram, d) = l.size(d);
    EXPECT_TRUE(m.complete(l));
    m.factors.t(kDram, Dim::C) = 8; // 8 != 16
    EXPECT_FALSE(m.complete(l));
}

TEST(Mapping, SpatialFactorsCountTowardProducts)
{
    Layer l = smallLayer();
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kDram, d) = l.size(d);
    m.factors.t(kDram, Dim::C) = 4;
    m.factors.spatial_c = 4;
    m.factors.t(kDram, Dim::K) = 8;
    m.factors.spatial_k = 4;
    EXPECT_TRUE(m.complete(l));
    EXPECT_EQ(m.dimProduct(Dim::C), 16);
    EXPECT_EQ(m.dimProduct(Dim::K), 32);
}

TEST(Mapping, ContinuousFactorsRoundTrip)
{
    Layer l = smallLayer();
    Rng rng(3);
    Mapping m = randomMapping(l, rng);
    Factors<double> f = m.continuousFactors();
    for (int lvl = 0; lvl < kNumLevels; ++lvl)
        for (Dim d : kAllDims)
            EXPECT_DOUBLE_EQ(f.t(lvl, d),
                    static_cast<double>(m.factors.t(lvl, d)));
    EXPECT_DOUBLE_EQ(f.spatial_c,
            static_cast<double>(m.factors.spatial_c));
}

TEST(Mapping, StrMentionsNonUnitFactors)
{
    Layer l = smallLayer();
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kDram, d) = l.size(d);
    std::string s = m.str();
    EXPECT_NE(s.find("C=16"), std::string::npos);
    EXPECT_NE(s.find("DRAM"), std::string::npos);
}

TEST(Ordering, UniformOrderKeepsRegistersWs)
{
    OrderVec v = uniformOrder(LoopOrder::OS);
    EXPECT_EQ(v[kRegisters], LoopOrder::WS);
    EXPECT_EQ(v[kAccumulator], LoopOrder::OS);
    EXPECT_EQ(v[kDram], LoopOrder::OS);
}

TEST(Ordering, StationaryTensors)
{
    EXPECT_EQ(stationaryTensor(LoopOrder::WS), Tensor::Weight);
    EXPECT_EQ(stationaryTensor(LoopOrder::IS), Tensor::Input);
    EXPECT_EQ(stationaryTensor(LoopOrder::OS), Tensor::Output);
}

TEST(Ordering, RefetchSetsMatchStationarity)
{
    // Under WS, weights are refetched only by weight dims; every other
    // tensor is refetched by all dims.
    EXPECT_TRUE(dimMultipliesRefetch(LoopOrder::WS, Tensor::Weight,
            Dim::C));
    EXPECT_FALSE(dimMultipliesRefetch(LoopOrder::WS, Tensor::Weight,
            Dim::P));
    EXPECT_TRUE(dimMultipliesRefetch(LoopOrder::WS, Tensor::Output,
            Dim::C));
    // Under OS, outputs escape the reduction dims.
    EXPECT_FALSE(dimMultipliesRefetch(LoopOrder::OS, Tensor::Output,
            Dim::C));
    EXPECT_TRUE(dimMultipliesRefetch(LoopOrder::OS, Tensor::Output,
            Dim::K));
}

struct RandomMappingCase
{
    const char *net;
    uint64_t seed;
};

class RandomMappingProperty
    : public ::testing::TestWithParam<RandomMappingCase>
{
};

TEST_P(RandomMappingProperty, AlwaysCompletePositiveAndCapped)
{
    auto param = GetParam();
    Network net = networkByName(param.net);
    Rng rng(param.seed);
    for (const Layer &l : net.layers) {
        for (int trial = 0; trial < 5; ++trial) {
            Mapping m = randomMapping(l, rng, 32);
            EXPECT_TRUE(m.complete(l)) << l.str();
            EXPECT_TRUE(m.positive()) << l.str();
            EXPECT_LE(m.factors.spatial_c, 32);
            EXPECT_LE(m.factors.spatial_k, 32);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Networks, RandomMappingProperty,
        ::testing::Values(RandomMappingCase{"resnet50", 1},
                          RandomMappingCase{"bert", 2},
                          RandomMappingCase{"unet", 3},
                          RandomMappingCase{"retinanet", 4},
                          RandomMappingCase{"deepbench", 5}));

TEST(Rounding, ExactFactorsPassThrough)
{
    Layer l = smallLayer();
    Factors<double> f;
    f.t(kRegisters, Dim::Q) = 4.0;
    f.spatial_c = 4.0;
    f.spatial_k = 8.0;
    f.t(kAccumulator, Dim::C) = 2.0;
    Mapping m = roundToValid(f, l, uniformOrder(LoopOrder::WS));
    EXPECT_TRUE(m.complete(l));
    EXPECT_EQ(m.factors.t(kRegisters, Dim::Q), 4);
    EXPECT_EQ(m.factors.spatial_c, 4);
    EXPECT_EQ(m.factors.spatial_k, 8);
    EXPECT_EQ(m.factors.t(kAccumulator, Dim::C), 2);
    // DRAM absorbs the residue: C = 16/(4*2) = 2.
    EXPECT_EQ(m.factors.t(kDram, Dim::C), 2);
}

TEST(Rounding, NonDivisorSnapsToNearest)
{
    Layer l;
    l.name = "p56";
    l.p = 56;
    Factors<double> f;
    f.t(kRegisters, Dim::P) = 13.0; // divisors of 56: ...8, 14...
    Mapping m = roundToValid(f, l, uniformOrder(LoopOrder::WS));
    EXPECT_EQ(m.factors.t(kRegisters, Dim::P), 14);
    EXPECT_EQ(m.factors.t(kDram, Dim::P), 4);
    EXPECT_TRUE(m.complete(l));
}

TEST(Rounding, QuotaPreventsOverflow)
{
    Layer l;
    l.name = "p12";
    l.p = 12;
    Factors<double> f;
    f.t(kRegisters, Dim::P) = 6.0;
    f.t(kAccumulator, Dim::P) = 4.0; // 6*4=24 > 12: quota forces 2
    Mapping m = roundToValid(f, l, uniformOrder(LoopOrder::WS));
    EXPECT_TRUE(m.complete(l));
    EXPECT_EQ(m.factors.t(kRegisters, Dim::P), 6);
    EXPECT_EQ(m.factors.t(kAccumulator, Dim::P), 2);
}

TEST(Rounding, RespectsPeCap)
{
    Layer l;
    l.name = "c64";
    l.c = 64;
    l.k = 64;
    Factors<double> f;
    f.spatial_c = 64.0;
    f.spatial_k = 64.0;
    Mapping m = roundToValid(f, l, uniformOrder(LoopOrder::WS), 16);
    EXPECT_LE(m.factors.spatial_c, 16);
    EXPECT_LE(m.factors.spatial_k, 16);
    EXPECT_TRUE(m.complete(l));
}

TEST(Rounding, AttachesRequestedOrder)
{
    Layer l = smallLayer();
    Factors<double> f;
    Mapping m = roundToValid(f, l, uniformOrder(LoopOrder::IS));
    EXPECT_EQ(m.order[kScratchpad], LoopOrder::IS);
    EXPECT_EQ(m.order[kRegisters], LoopOrder::WS);
}

class RoundingFuzz : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(RoundingFuzz, RandomContinuousFactorsAlwaysRoundValid)
{
    Rng rng(GetParam());
    std::vector<Layer> pool = uniqueTrainingLayers();
    for (int trial = 0; trial < 40; ++trial) {
        const Layer &l = pool[size_t(rng.uniformInt(0,
                static_cast<int64_t>(pool.size()) - 1))];
        Factors<double> f;
        for (int lvl = 0; lvl < kDram; ++lvl)
            for (Dim d : kAllDims)
                f.t(lvl, d) = rng.logUniform(0.3,
                        static_cast<double>(l.size(d)) + 2.0);
        f.spatial_c = rng.logUniform(0.5, 200.0);
        f.spatial_k = rng.logUniform(0.5, 200.0);
        Mapping m = roundToValid(f, l, uniformOrder(LoopOrder::WS));
        EXPECT_TRUE(m.complete(l)) << l.str();
        EXPECT_TRUE(m.positive()) << l.str();
        EXPECT_LE(m.factors.spatial_c, kMaxPeDim);
        EXPECT_LE(m.factors.spatial_k, kMaxPeDim);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundingFuzz,
        ::testing::Values(11, 22, 33, 44));

} // namespace
} // namespace dosa
