/**
 * @file
 * Property tests cross-checking the closed-form model against the
 * brute-force loop-nest interpreter on small layers: refetch counts
 * and tile footprints must match the observed execution.
 */

#include <gtest/gtest.h>

#include "loopnest/interpreter.hh"
#include "model/analytical.hh"
#include "model/reference.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

/** Small layers with non-trivial factorizations. */
std::vector<Layer>
tinyLayers()
{
    std::vector<Layer> out;
    out.push_back(Layer::conv("t1", 3, 4, 4, 4));
    out.push_back(Layer::conv("t2", 1, 6, 8, 4));
    out.push_back(Layer::conv("t3", 2, 4, 6, 6, 1, 1, 2));
    out.push_back(Layer::gemm("t4", 8, 6, 4));
    Layer s2 = Layer::conv("t5_stride2", 3, 4, 4, 4, 2);
    out.push_back(s2);
    return out;
}

class LoopnestCross : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LoopnestCross, RefetchMultiplierMatchesObservedWalk)
{
    Rng rng(GetParam());
    for (const Layer &l : tinyLayers()) {
        for (int trial = 0; trial < 6; ++trial) {
            Mapping m = randomMapping(l, rng, 4);
            for (int level = 0; level < kNumLevels; ++level) {
                if (refetchWalkIterations(m, level) > 200000)
                    continue;
                for (Tensor t : kAllTensors) {
                    Factors<double> f = m.continuousFactors();
                    double model = refetchMultiplier(f, m.order,
                            level, t);
                    double observed = observedRefetches(l, m, level,
                            t);
                    EXPECT_DOUBLE_EQ(model, observed)
                            << l.str() << " level=" << level
                            << " tensor=" << tensorName(t)
                            << "\nmapping: " << m.str();
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopnestCross,
        ::testing::Values(1, 2, 3));

class LoopnestTiles : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(LoopnestTiles, TileFootprintMatchesObservedWords)
{
    Rng rng(GetParam() + 100);
    for (const Layer &l : tinyLayers()) {
        for (int trial = 0; trial < 6; ++trial) {
            Mapping m = randomMapping(l, rng, 4);
            for (int level = 1; level < kNumLevels; ++level) {
                for (Tensor t : kAllTensors) {
                    if (!levelHoldsTensor(level, t))
                        continue;
                    Factors<double> f = m.continuousFactors();
                    double model = tileWords(l, f, level, t);
                    double observed = observedTileWords(l, m, level,
                            t);
                    if (t == Tensor::Input && l.stride > 1) {
                        // The dense bounding-box halo (what Timeloop
                        // and the paper compute) can exceed the true
                        // gappy footprint when the stride exceeds a
                        // tile's inner R/S extent.
                        EXPECT_GE(model, observed - 1e-9);
                    } else {
                        EXPECT_DOUBLE_EQ(model, observed)
                                << l.str() << " level=" << level
                                << " tensor=" << tensorName(t)
                                << "\nmapping: " << m.str();
                    }
                }
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LoopnestTiles,
        ::testing::Values(1, 2, 3));

TEST(Loopnest, FullTensorBelowDramMeansFullDramTile)
{
    // When every loop sits below DRAM, the DRAM-resident tile spans
    // the whole tensor.
    for (const Layer &l : tinyLayers()) {
        Mapping m;
        for (Dim d : kAllDims)
            m.factors.t(kScratchpad, d) = l.size(d);
        ASSERT_TRUE(m.complete(l));
        for (Tensor t : kAllTensors) {
            double observed = observedTileWords(l, m, kDram, t);
            if (t == Tensor::Input && l.stride > 1)
                EXPECT_LE(observed, l.tensorWords(t));
            else
                EXPECT_DOUBLE_EQ(observed, l.tensorWords(t))
                        << l.str() << " " << tensorName(t);
        }
    }
}

TEST(Loopnest, UnitNestHasSingleFetch)
{
    Layer l = Layer::conv("unit", 1, 2, 2, 2);
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kRegisters, d) = l.size(d);
    ASSERT_TRUE(m.complete(l));
    for (Tensor t : kAllTensors)
        EXPECT_DOUBLE_EQ(observedRefetches(l, m, kAccumulator, t), 1.0);
}

TEST(Loopnest, IterationCountGuard)
{
    Layer l = Layer::conv("g", 1, 4, 4, 4);
    Mapping m;
    for (Dim d : kAllDims)
        m.factors.t(kDram, d) = l.size(d);
    EXPECT_DOUBLE_EQ(refetchWalkIterations(m, 0),
            static_cast<double>(l.macs()));
}

} // namespace
} // namespace dosa
