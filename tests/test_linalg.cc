/**
 * @file
 * Unit tests for dense matrices and Cholesky factorization/solves.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.hh"
#include "linalg/matrix.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

TEST(Matrix, IdentityAndIndexing)
{
    Matrix m = Matrix::identity(3);
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(m(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, MatmulKnown)
{
    Matrix a(2, 3);
    Matrix b(3, 2);
    // a = [1 2 3; 4 5 6], b = [7 8; 9 10; 11 12]
    double av[] = {1, 2, 3, 4, 5, 6};
    double bv[] = {7, 8, 9, 10, 11, 12};
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 3; ++j)
            a(i, j) = av[i * 3 + j];
    for (size_t i = 0; i < 3; ++i)
        for (size_t j = 0; j < 2; ++j)
            b(i, j) = bv[i * 2 + j];
    Matrix c = a.matmul(b);
    EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, MatvecAndTranspose)
{
    Matrix a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    auto v = a.matvec({1.0, 1.0});
    EXPECT_DOUBLE_EQ(v[0], 3.0);
    EXPECT_DOUBLE_EQ(v[1], 7.0);
    Matrix at = a.transpose();
    EXPECT_DOUBLE_EQ(at(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(at(1, 0), 2.0);
}

TEST(Matrix, AddDiagonal)
{
    Matrix a(3, 3, 0.0);
    a.addDiagonal(2.5);
    EXPECT_DOUBLE_EQ(a(0, 0), 2.5);
    EXPECT_DOUBLE_EQ(a(2, 2), 2.5);
    EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(Dot, Basic)
{
    EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
}

TEST(Cholesky, FactorOfKnownSpd)
{
    // A = [[4, 2], [2, 3]]; L = [[2, 0], [1, sqrt(2)]].
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    Cholesky chol(a);
    EXPECT_NEAR(chol.factor()(0, 0), 2.0, 1e-12);
    EXPECT_NEAR(chol.factor()(1, 0), 1.0, 1e-12);
    EXPECT_NEAR(chol.factor()(1, 1), std::sqrt(2.0), 1e-12);
    EXPECT_NEAR(chol.logDet(), std::log(8.0), 1e-12);
}

class CholeskyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CholeskyProperty, SolveRecoversSolution)
{
    const size_t n = static_cast<size_t>(GetParam());
    Rng rng(static_cast<uint64_t>(n) * 101 + 7);
    // Build SPD A = B B^T + n*I and a random truth x.
    Matrix b(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            b(i, j) = rng.gaussian();
    Matrix a = b.matmul(b.transpose());
    a.addDiagonal(static_cast<double>(n));
    std::vector<double> truth(n);
    for (double &v : truth)
        v = rng.gaussian();
    std::vector<double> rhs = a.matvec(truth);

    Cholesky chol(a);
    std::vector<double> x = chol.solve(rhs);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], truth[i], 1e-8);

    // L L^T must reconstruct A.
    Matrix l = chol.factor();
    Matrix rec = l.matmul(l.transpose());
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            EXPECT_NEAR(rec(i, j), a(i, j), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
        ::testing::Values(1, 2, 3, 5, 10, 25, 50));

TEST(Cholesky, SolveLowerIsForwardSubstitution)
{
    Matrix a(2, 2);
    a(0, 0) = 4;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 3;
    Cholesky chol(a);
    // L y = b with L = [[2,0],[1,sqrt 2]] and b = [2, 1+sqrt 2].
    auto y = chol.solveLower({2.0, 1.0 + std::sqrt(2.0)});
    EXPECT_NEAR(y[0], 1.0, 1e-12);
    EXPECT_NEAR(y[1], 1.0, 1e-12);
}

} // namespace
} // namespace dosa
