/**
 * @file
 * Determinism-linter tests: every rule fires on its golden fixture
 * with the right file:line, LINT-ALLOW suppresses exactly the line
 * it annotates, the sanitizer ignores comments/strings, and the
 * real source tree scans clean — the same invocation CI blocks on.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint_determinism/lint.hh"

namespace {

using dosa::lint::Finding;
using dosa::lint::lintFile;
using dosa::lint::lintTree;
using dosa::lint::stripCommentsAndStrings;

std::string
fixturesDir()
{
    return std::string(DOSA_SOURCE_DIR) +
           "/tools/lint_determinism/fixtures";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot read " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The (line, rule) pairs of `findings`, for compact comparisons. */
std::vector<std::pair<int, std::string>>
lineRules(const std::vector<Finding> &findings)
{
    std::vector<std::pair<int, std::string>> out;
    for (const Finding &f : findings)
        out.emplace_back(f.line, f.rule);
    return out;
}

TEST(LintRules, RawRngFiresOnEverySpellingWithExactLines)
{
    std::vector<Finding> findings =
        lintFile("src/search/fixture_raw_rng.cc",
                 readFile(fixturesDir() + "/fixture_raw_rng.cc"));
    std::vector<std::pair<int, std::string>> expected = {
        {6, "raw-rng"}, // srand
        {7, "raw-rng"}, // rand
        {8, "raw-rng"}, // random_device
        {9, "raw-rng"}, // drand48
    };
    EXPECT_EQ(lineRules(findings), expected);
    ASSERT_FALSE(findings.empty());
    EXPECT_EQ(findings[0].file, "src/search/fixture_raw_rng.cc");
}

TEST(LintRules, WallClockFiresOnEveryClockReadWithExactLines)
{
    std::vector<Finding> findings =
        lintFile("src/search/fixture_wall_clock.cc",
                 readFile(fixturesDir() + "/fixture_wall_clock.cc"));
    std::vector<std::pair<int, std::string>> expected = {
        {7, "wall-clock"},  // steady_clock::now
        {8, "wall-clock"},  // system_clock::now
        {9, "wall-clock"},  // high_resolution_clock::now
        {10, "wall-clock"}, // time(nullptr)
    };
    EXPECT_EQ(lineRules(findings), expected);
}

TEST(LintRules, UnorderedContainersFlaggedInResultPaths)
{
    std::vector<Finding> findings =
        lintFile("src/search/fixture_unordered.cc",
                 readFile(fixturesDir() + "/fixture_unordered.cc"));
    std::vector<std::pair<int, std::string>> expected = {
        {2, "unordered-iter"}, // include <unordered_map>
        {3, "unordered-iter"}, // include <unordered_set>
        {7, "unordered-iter"}, // declaration
        {8, "unordered-iter"}, // declaration
    };
    EXPECT_EQ(lineRules(findings), expected);
}

TEST(LintRules, PathScopingExemptsTheRuleHomes)
{
    const std::string rng = "int f() { return std::rand(); }\n";
    EXPECT_TRUE(lintFile("src/util/rng.hh", rng).empty());
    EXPECT_FALSE(lintFile("src/core/model.cc", rng).empty());

    const std::string clock =
        "auto t = std::chrono::steady_clock::now();\n";
    EXPECT_TRUE(lintFile("src/obs/trace.cc", clock).empty());
    EXPECT_TRUE(lintFile("src/service/search_service.cc", clock).empty());
    EXPECT_TRUE(lintFile("bench/bench_fig7.cc", clock).empty());
    EXPECT_FALSE(lintFile("src/search/random_search.cc", clock).empty());

    const std::string unordered = "#include <unordered_map>\n";
    EXPECT_TRUE(lintFile("src/exec/eval_cache.hh", unordered).empty());
    EXPECT_FALSE(lintFile("src/core/model.hh", unordered).empty());
}

TEST(LintAllows, SameLineAndPrecedingLineSuppressExactlyOneLine)
{
    std::vector<Finding> findings =
        lintFile("src/search/fixture_allows.cc",
                 readFile(fixturesDir() + "/fixture_allows.cc"));
    // Lines 6 (same-line allow) and 12 (preceding-line allow) are
    // suppressed; the empty-why allow on 17 does not suppress, so
    // both the meta finding and the raw-rng finding surface there.
    std::vector<std::pair<int, std::string>> expected = {
        {17, "bad-allow"},    // empty justification
        {17, "raw-rng"},      // not suppressed by the bad allow
        {20, "bad-allow"},    // unknown rule name
        {21, "unused-allow"}, // suppresses nothing
    };
    EXPECT_EQ(lineRules(findings), expected);
}

TEST(LintAllows, AllowCoversOnlyItsOwnRule)
{
    const std::string src =
        "// LINT-ALLOW(wall-clock): wrong rule for the next line\n"
        "int x = std::rand();\n";
    std::vector<Finding> findings =
        lintFile("src/core/wrong_rule.cc", src);
    // The raw-rng finding survives and the wall-clock allow is stale.
    std::vector<std::pair<int, std::string>> expected = {
        {1, "unused-allow"},
        {2, "raw-rng"},
    };
    EXPECT_EQ(lineRules(findings), expected);
}

TEST(LintSanitizer, CommentsAndStringsNeverTrip)
{
    std::vector<Finding> findings =
        lintFile("src/search/fixture_clean.cc",
                 readFile(fixturesDir() + "/fixture_clean.cc"));
    EXPECT_TRUE(findings.empty())
        << dosa::lint::formatFinding(findings.front());
}

TEST(LintSanitizer, StripPreservesLineStructure)
{
    const std::string src = "int a; // rand()\n"
                            "const char *s = \"time(0)\";\n"
                            "/* multi\n"
                            "   line */ int b;\n";
    std::string stripped = stripCommentsAndStrings(src);
    EXPECT_EQ(std::count(src.begin(), src.end(), '\n'),
              std::count(stripped.begin(), stripped.end(), '\n'));
    EXPECT_EQ(src.size(), stripped.size());
    EXPECT_EQ(stripped.find("rand"), std::string::npos);
    EXPECT_EQ(stripped.find("time"), std::string::npos);
    EXPECT_NE(stripped.find("int b;"), std::string::npos);
}

TEST(LintSanitizer, RawStringsAndCharLiteralsAreBlanked)
{
    const std::string src =
        "auto r = R\"(srand(7) unordered_map)\";\n"
        "char c = 'r'; int k = 1'000'000;\n";
    std::string stripped = stripCommentsAndStrings(src);
    EXPECT_EQ(stripped.find("srand"), std::string::npos);
    EXPECT_EQ(stripped.find("unordered_map"), std::string::npos);
    EXPECT_NE(stripped.find("int k = 1'000'000;"), std::string::npos);
}

TEST(LintTree, FixtureDirectoryScanFindsTheSeededViolations)
{
    std::vector<Finding> findings;
    std::string error;
    ASSERT_TRUE(lintTree(fixturesDir(), {"."}, findings, error))
        << error;
    // The fixture dir is outside src/, so only the path-unscoped
    // rules fire; the seeded raw-rng and wall-clock hits plus the
    // allow meta findings must all be there.
    EXPECT_GE(findings.size(), 10u);
    for (const Finding &f : findings)
        EXPECT_GT(f.line, 0) << dosa::lint::formatFinding(f);
}

TEST(LintTree, RealSourceTreeIsClean)
{
    // The same invocation the `lint_determinism_tree` CTest entry and
    // the CI job run: the shipped tree must stay finding-free.
    std::vector<Finding> findings;
    std::string error;
    ASSERT_TRUE(lintTree(DOSA_SOURCE_DIR,
                         {"src", "bench", "examples", "tests"},
                         findings, error))
        << error;
    std::string report;
    for (const Finding &f : findings)
        report += dosa::lint::formatFinding(f) + "\n";
    EXPECT_TRUE(findings.empty()) << report;
}

TEST(LintTree, ScanOutputIsDeterministic)
{
    std::vector<Finding> a, b;
    std::string error;
    ASSERT_TRUE(lintTree(fixturesDir(), {"."}, a, error)) << error;
    ASSERT_TRUE(lintTree(fixturesDir(), {"."}, b, error)) << error;
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(dosa::lint::formatFinding(a[i]),
                  dosa::lint::formatFinding(b[i]));
}

} // namespace
