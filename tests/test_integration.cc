/**
 * @file
 * Cross-module integration tests: miniature versions of the paper's
 * headline experiments, verifying the qualitative claims end-to-end
 * (DOSA beats random search; hardware and mapping improvements are
 * both real; the surrogate-augmented flow runs against the RTL
 * substitute).
 */

#include <gtest/gtest.h>

#include "arch/baselines.hh"
#include "core/dosa_optimizer.hh"
#include "model/reference.hh"
#include "rtl/gemmini_rtl.hh"
#include "search/cosa_mapper.hh"
#include "search/random_search.hh"
#include "surrogate/dataset.hh"
#include "surrogate/latency_predictor.hh"
#include "workload/model_zoo.hh"

namespace dosa {
namespace {

/** Small layer subset so integration tests stay fast. */
std::vector<Layer>
miniWorkload()
{
    Network net = bertBase();
    return {net.layers[0], net.layers[4], net.layers[5]};
}

TEST(Integration, DosaBeatsRandomSearchAtEqualSamples)
{
    std::vector<Layer> layers = miniWorkload();

    DosaConfig dcfg;
    dcfg.start_points = 2;
    dcfg.steps_per_start = 150;
    dcfg.round_every = 50;
    dcfg.seed = 1;
    DosaResult dosa = dosaSearch(layers, dcfg);
    size_t samples = dosa.search.trace.size();

    RandomSearchConfig rcfg;
    rcfg.hw_designs = 4;
    rcfg.mappings_per_hw =
            static_cast<int>(samples) / rcfg.hw_designs;
    rcfg.seed = 1;
    SearchResult random = randomSearch(layers, rcfg);

    EXPECT_LT(dosa.search.best_edp, random.best_edp);
}

TEST(Integration, DosaHardwareHelpsUnderConstantMapper)
{
    // Fig. 9's attribution: DOSA's end-point hardware with CoSA
    // mappings should beat the start-point hardware with CoSA
    // mappings (hardware improvement is real, not mapper luck).
    std::vector<Layer> layers = miniWorkload();
    DosaConfig cfg;
    cfg.start_points = 2;
    cfg.steps_per_start = 150;
    cfg.round_every = 50;
    cfg.seed = 5;
    DosaResult r = dosaSearch(layers, cfg);

    auto cosa_on = [&](const HardwareConfig &hw) {
        std::vector<Mapping> maps;
        for (const Layer &l : layers)
            maps.push_back(cosaMap(l, hw));
        return referenceNetworkEval(layers, maps, hw).edp;
    };
    double end_hw_cosa = cosa_on(r.search.best_hw);
    double start_hw_cosa = cosa_on(r.best_start_hw);
    EXPECT_LE(end_hw_cosa, start_hw_cosa * 1.5);
    // And the DOSA mappings must beat CoSA on DOSA's own hardware.
    EXPECT_LT(r.search.best_edp, end_hw_cosa * 1.01);
}

TEST(Integration, DosaOptimizedGemminiBeatsExpertBaselines)
{
    // Fig. 8 in miniature: the co-searched design should outperform
    // at least the constrained baselines on its target workload.
    std::vector<Layer> layers = miniWorkload();
    DosaConfig cfg;
    cfg.start_points = 2;
    cfg.steps_per_start = 150;
    cfg.round_every = 50;
    cfg.seed = 7;
    DosaResult r = dosaSearch(layers, cfg);

    for (const BaselineAccelerator &base :
         {nvdlaSmall(), gemminiDefault()}) {
        std::vector<Mapping> maps;
        for (const Layer &l : layers)
            maps.push_back(cosaMap(l, base.config));
        double base_edp = referenceNetworkEval(layers, maps,
                base.config).edp;
        EXPECT_LT(r.search.best_edp, base_edp) << base.name;
    }
}

TEST(Integration, SurrogateGuidedRtlOptimizationImproves)
{
    // Fig. 12 in miniature: fixed 16x16 PEs, buffer sizes + mappings
    // optimized under the combined latency model, evaluated on the
    // RTL substitute, compared against the default Gemmini config
    // with CoSA mappings.
    std::vector<Layer> layers = miniWorkload();

    SurrogateDataset ds = generateSurrogateDataset(250, 3);
    LatencyPredictor combined = LatencyPredictor::trainCombined(ds, 80,
            3);
    SurrogateDiffModel diff(combined);

    DosaConfig cfg;
    cfg.start_points = 2;
    cfg.steps_per_start = 120;
    cfg.round_every = 40;
    cfg.mode.fix_pe = true;
    cfg.mode.pe_dim = 16;
    cfg.mode.latency_model = &diff;
    cfg.score_latency = combined.scorer();
    cfg.seed = 11;
    DosaResult r = dosaSearch(layers, cfg);

    auto rtl_edp = [&](const std::vector<Mapping> &maps,
                       const HardwareConfig &hw) {
        double e = 0.0, lat = 0.0;
        for (size_t i = 0; i < layers.size(); ++i) {
            RefEval ev = referenceEval(layers[i], maps[i], hw);
            double cnt = static_cast<double>(layers[i].count);
            e += cnt * ev.energy_uj;
            lat += cnt * rtlLatency(layers[i], maps[i], hw);
        }
        return e * lat;
    };

    HardwareConfig def = gemminiDefault().config;
    std::vector<Mapping> def_maps;
    for (const Layer &l : layers)
        def_maps.push_back(cosaMap(l, def));
    double default_rtl_edp = rtl_edp(def_maps, def);
    double dosa_rtl_edp = rtl_edp(r.search.best_mappings,
            r.search.best_hw);

    EXPECT_EQ(r.search.best_hw.pe_dim, 16);
    EXPECT_LT(dosa_rtl_edp, default_rtl_edp);
}

TEST(Integration, IterateOrderingNoWorseThanFixed)
{
    std::vector<Layer> layers = miniWorkload();
    DosaConfig fixed;
    fixed.start_points = 1;
    fixed.steps_per_start = 100;
    fixed.round_every = 50;
    fixed.strategy = OrderStrategy::Fixed;
    fixed.seed = 13;
    DosaConfig iter = fixed;
    iter.strategy = OrderStrategy::Iterate;
    double edp_fixed = dosaSearch(layers, fixed).search.best_edp;
    double edp_iter = dosaSearch(layers, iter).search.best_edp;
    EXPECT_LE(edp_iter, edp_fixed * 1.001);
}

} // namespace
} // namespace dosa
