/**
 * @file
 * Tests for the MLP: shape/parameter accounting, training convergence
 * on known functions, determinism, and the templated forward pass
 * (including autodiff gradients through the trained network).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/tape.hh"
#include "autodiff/var.hh"
#include "nn/mlp.hh"
#include "util/rng.hh"

namespace dosa {
namespace {

using ad::Tape;
using ad::Var;

TEST(Mlp, ParamCountMatchesArchitecture)
{
    Mlp net({4, 8, 8, 1}, 1);
    // 4*8+8 + 8*8+8 + 8*1+1 = 40 + 72 + 9 = 121.
    EXPECT_EQ(net.paramCount(), 121u);
}

TEST(Mlp, PaperScaleNetworkHasAbout5_7kParams)
{
    // The surrogate architecture: 7 hidden layers, ~5.7k params.
    Mlp net({43, 27, 27, 27, 27, 27, 27, 27, 1}, 1);
    EXPECT_EQ(net.paramCount(),
            size_t(43 * 27 + 27 + 6 * (27 * 27 + 27) + 27 + 1));
    EXPECT_NEAR(static_cast<double>(net.paramCount()), 5737.0, 100.0);
}

TEST(Mlp, DeterministicInitialization)
{
    Mlp a({3, 8, 1}, 42), b({3, 8, 1}, 42);
    std::vector<double> x = {0.1, -0.2, 0.7};
    EXPECT_DOUBLE_EQ(a.predict(x), b.predict(x));
    Mlp c({3, 8, 1}, 43);
    EXPECT_NE(a.predict(x), c.predict(x));
}

TEST(Mlp, LearnsLinearFunction)
{
    Rng rng(7);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 256; ++i) {
        double a = rng.uniformReal(-1, 1), b = rng.uniformReal(-1, 1);
        x.push_back({a, b});
        y.push_back(2.0 * a - 3.0 * b + 0.5);
    }
    Mlp net({2, 16, 16, 1}, 3);
    double loss = 1e9;
    for (int e = 0; e < 200; ++e)
        loss = net.trainEpoch(x, y, 1e-2, 100 + e);
    EXPECT_LT(loss, 1e-3);
    EXPECT_NEAR(net.predict({0.3, -0.4}), 2.0 * 0.3 + 1.2 + 0.5, 0.1);
}

TEST(Mlp, LearnsNonlinearFunction)
{
    Rng rng(11);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 512; ++i) {
        double a = rng.uniformReal(-2, 2), b = rng.uniformReal(-2, 2);
        x.push_back({a, b});
        y.push_back(a * a + std::abs(b));
    }
    Mlp net({2, 24, 24, 24, 1}, 5);
    double loss = 1e9;
    for (int e = 0; e < 300; ++e)
        loss = net.trainEpoch(x, y, 3e-3, 200 + e);
    EXPECT_LT(loss, 0.05);
}

TEST(Mlp, TrainingLossDecreases)
{
    Rng rng(13);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 128; ++i) {
        double a = rng.uniformReal(-1, 1);
        x.push_back({a});
        y.push_back(std::sin(3.0 * a));
    }
    Mlp net({1, 16, 16, 1}, 9);
    double first = net.trainEpoch(x, y, 1e-2, 1);
    double last = first;
    for (int e = 1; e < 100; ++e)
        last = net.trainEpoch(x, y, 1e-2, 1 + e);
    EXPECT_LT(last, 0.5 * first);
}

TEST(Mlp, ForwardTMatchesPredict)
{
    Mlp net({3, 8, 8, 1}, 21);
    std::vector<double> x = {0.5, -1.0, 0.25};
    double via_predict = net.predict(x);
    double via_template = net.forwardT<double>(x);
    EXPECT_DOUBLE_EQ(via_predict, via_template);
}

TEST(Mlp, ForwardTOnVarsGradChecks)
{
    Mlp net({2, 10, 10, 1}, 33);
    double a0 = 0.4, b0 = -0.7;
    Tape tape;
    Var a(tape, a0), b(tape, b0);
    Var out = net.forwardT<Var>({a, b});
    EXPECT_DOUBLE_EQ(out.value(), net.predict({a0, b0}));
    auto adj = tape.gradient(out.id());
    double h = 1e-6;
    double fd_a = (net.predict({a0 + h, b0}) -
                   net.predict({a0 - h, b0})) / (2 * h);
    double fd_b = (net.predict({a0, b0 + h}) -
                   net.predict({a0, b0 - h})) / (2 * h);
    EXPECT_NEAR(adj[size_t(a.id())], fd_a, 1e-5 + 1e-4 * std::abs(fd_a));
    EXPECT_NEAR(adj[size_t(b.id())], fd_b, 1e-5 + 1e-4 * std::abs(fd_b));
}

TEST(Mlp, EpochShuffleSeedChangesOrderNotResult)
{
    // Different shuffle seeds must still converge to similar loss.
    Rng rng(17);
    std::vector<std::vector<double>> x;
    std::vector<double> y;
    for (int i = 0; i < 128; ++i) {
        double a = rng.uniformReal(-1, 1);
        x.push_back({a});
        y.push_back(2.0 * a);
    }
    Mlp n1({1, 8, 1}, 2), n2({1, 8, 1}, 2);
    double l1 = 0, l2 = 0;
    for (int e = 0; e < 150; ++e) {
        l1 = n1.trainEpoch(x, y, 1e-2, 1000 + e);
        l2 = n2.trainEpoch(x, y, 1e-2, 9000 + e);
    }
    EXPECT_LT(l1, 0.01);
    EXPECT_LT(l2, 0.01);
}

} // namespace
} // namespace dosa
